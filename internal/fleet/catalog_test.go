package fleet

import (
	"strings"
	"testing"
)

// TestFuzzerPromotedOutcomes pins the committed dynamics of the two
// fuzzer-promoted catalog entries — the counts the Expect strings promise.
// A deliberate change to scheduling, draining or the injectors may shift
// these numbers; re-run the scenario, re-read the records, and update both
// the counts here and the Expect text in the catalog and SCENARIOS.md.
func TestFuzzerPromotedOutcomes(t *testing.T) {
	type outcome struct {
		completed     int // migrations that cut over
		midDrainAbort int // drains aborted by a target-region failure
		placementFail int // attempts that found no healthy capacity
	}
	want := map[string]outcome{
		"fuzzed-drain-races":      {completed: 11, midDrainAbort: 2},
		"fuzzed-capacity-squeeze": {completed: 7, midDrainAbort: 1, placementFail: 5},
	}
	for name, w := range want {
		t.Run(name, func(t *testing.T) {
			e, err := ScenarioByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunScenario(e.Opts)
			if err != nil {
				t.Fatal(err)
			}
			f := res.Fleet
			var got outcome
			for _, app := range f.Apps() {
				for i, m := range f.App(app).Migrations {
					switch {
					case m.Completed():
						got.completed++
					case m.Err != nil && strings.Contains(m.Err.Error(), "failed mid-drain"):
						got.midDrainAbort++
					case m.Err != nil && strings.Contains(m.Err.Error(), "no healthy capacity"):
						got.placementFail++
					case m.Aborted():
						// Retirement or end-of-run Stop: expected, not counted.
					default:
						t.Errorf("%s migration %d is non-terminal: %+v", app, i, m)
					}
					if m.Ranked && m.TargetHealth < m.SourceHealth {
						t.Errorf("%s migration %d: ranked target measurably worse: %.4f -> %.4f",
							app, i, m.SourceHealth, m.TargetHealth)
					}
				}
			}
			if got != w {
				t.Errorf("outcomes = %+v, want %+v", got, w)
			}
			if err := f.AuditSlots(); err != nil {
				t.Error(err)
			}
			cleanBackgrounds(t, f.Net)
		})
	}
}
