package fleet

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"archadapt/internal/obs"
)

// traceOpts is the traced acceptance scenario: the region-collapse rescue
// with ranked targeting, so the trace carries the full fleet decision chain
// (verdicts, ranked decide, reserve, drain, cutover, recovery, region
// health) on top of the per-app control loops.
func traceOpts(trace bool) ScenarioOptions {
	opts := regionCollapseOpts(true)
	opts.Migration.Ranked = true
	opts.Trace = trace
	return opts
}

// TestTraceOffIsByteIdentical is the purity contract: tracing only observes.
// A traced run must produce exactly the summaries and migration records of
// the same-seed untraced run — the only difference is the attached PhaseSets.
func TestTraceOffIsByteIdentical(t *testing.T) {
	off, err := RunScenario(traceOpts(false))
	if err != nil {
		t.Fatal(err)
	}
	on, err := RunScenario(traceOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	if off.Fleet.Tracer() != nil {
		t.Fatal("untraced fleet has a tracer")
	}
	if on.Fleet.Tracer() == nil {
		t.Fatal("traced fleet has no tracer")
	}
	if len(off.Summaries) != len(on.Summaries) {
		t.Fatalf("summary counts differ: %d vs %d", len(off.Summaries), len(on.Summaries))
	}
	for i, a := range off.Summaries {
		b := on.Summaries[i]
		if a.Phases != nil {
			t.Fatalf("untraced summary %s carries phases", a.Name)
		}
		if b.Phases == nil {
			t.Fatalf("traced summary %s has nil phases", b.Name)
		}
		b.Phases = nil
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("summary %s differs with tracing on:\noff: %+v\non:  %+v", a.Name, a, b)
		}
	}
	for _, name := range off.Fleet.Apps() {
		ma, mb := off.Fleet.App(name).Migrations, on.Fleet.App(name).Migrations
		if !reflect.DeepEqual(ma, mb) {
			t.Fatalf("%s migration records differ with tracing on:\noff: %+v\non:  %+v", name, ma, mb)
		}
	}
}

// TestTraceCausalChain runs the traced region-collapse scenario and walks
// the span tree: the control loop's layers must be causally linked from
// probe samples all the way to migration cutover and recovery.
func TestTraceCausalChain(t *testing.T) {
	r, err := RunScenario(traceOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	tr := r.Fleet.Tracer()

	for _, k := range []obs.Kind{
		obs.KindProbeSample, obs.KindGaugeUpdate, obs.KindGaugeReport,
		obs.KindModelUpdate, obs.KindViolation, obs.KindVerdict,
		obs.KindMigrateDecide, obs.KindReserve, obs.KindDrain,
		obs.KindCutover, obs.KindRecover, obs.KindRegionHealth,
	} {
		if tr.CountKind(k) == 0 {
			t.Errorf("no %s spans in the trace", k)
		}
	}

	// Every migration decision must be causally rooted in the monitoring
	// plane: a probe sample where the chain has one, at least a gauge report
	// otherwise (bandwidth updates are rooted at the Remos reply).
	decides := 0
	for _, sp := range tr.Spans() {
		if sp.Kind != obs.KindMigrateDecide {
			continue
		}
		decides++
		if _, ok := tr.Ancestor(sp.ID, obs.KindProbeSample, obs.KindGaugeReport); !ok {
			t.Errorf("migrate.decide span %d (%s %s) has no probe/report ancestor", sp.ID, sp.App, sp.Name)
		}
		if sp.App != "app00" {
			t.Errorf("migrate.decide for %s; only app00's region collapsed", sp.App)
		}
	}
	if decides == 0 {
		t.Fatal("no migrate.decide spans")
	}

	// Drain spans of completed migrations are closed and match the records.
	for _, sp := range tr.Spans() {
		if sp.Kind == obs.KindDrain && sp.End < sp.Start {
			t.Errorf("drain span %d left open", sp.ID)
		}
	}

	// The victim's phase distributions cover the whole loop.
	var victim *AppSummary
	for i := range r.Summaries {
		if r.Summaries[i].Name == "app00" {
			victim = &r.Summaries[i]
		}
	}
	if victim == nil || victim.Phases == nil {
		t.Fatal("no traced summary for app00")
	}
	for _, p := range []obs.Phase{obs.PhaseDetect, obs.PhaseDecide, obs.PhaseDrain, obs.PhaseRecover} {
		if victim.Phases.Dist(p).N() == 0 {
			t.Errorf("app00 has no %s phase samples", p)
		}
	}

	// Kernel event-rate counters cover the run.
	total := uint64(0)
	for _, n := range tr.KernelBuckets() {
		total += n
	}
	if total == 0 {
		t.Fatal("kernel event counters empty")
	}

	// Both exporters accept the real trace.
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("chrome export empty")
	}

	// The rendered tables carry the phase block.
	if table := Table(r.Summaries); !bytes.Contains([]byte(table), []byte("phase latency")) {
		t.Fatalf("Table missing phase block:\n%s", table)
	}
	if table := CompareTable(r.Summaries, r.Summaries); !bytes.Contains([]byte(table), []byte("phase latency")) {
		t.Fatal("CompareTable missing phase block")
	}
}

// TestTraceDeterministic: same-seed traced runs must produce identical span
// trees, phase percentiles, kernel counters and Chrome exports.
func TestTraceDeterministic(t *testing.T) {
	r1, err := RunScenario(traceOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunScenario(traceOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := r1.Fleet.Tracer(), r2.Fleet.Tracer()
	if !reflect.DeepEqual(t1.Spans(), t2.Spans()) {
		t.Fatal("span trees differ between identical traced runs")
	}
	if !reflect.DeepEqual(t1.KernelBuckets(), t2.KernelBuckets()) {
		t.Fatal("kernel counters differ between identical traced runs")
	}
	for _, app := range t1.PhaseApps() {
		p1, p2 := t1.PhasesFor(app), t2.PhasesFor(app)
		if p2 == nil {
			t.Fatalf("%s has phases in run 1 only", app)
		}
		for p := obs.Phase(0); p < obs.NumPhases; p++ {
			for _, q := range []float64{50, 95, 99} {
				if v1, v2 := p1.Dist(p).Percentile(q), p2.Dist(p).Percentile(q); v1 != v2 {
					t.Fatalf("%s %s p%.0f differs: %v vs %v", app, p, q, v1, v2)
				}
			}
		}
	}
	var b1, b2 bytes.Buffer
	if err := t1.WriteChromeTrace(&b1); err != nil {
		t.Fatal(err)
	}
	if err := t2.WriteChromeTrace(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("chrome exports differ between identical traced runs")
	}
}
