package fleet

import "testing"

// TestMigrationRecordFields pins the Migration record contract end to end:
// run the ranked region-collapse rescue, then check every record's fields —
// decision/completion ordering, the ranked-targeting health scores, the
// failure/abort encodings — and that Summaries and ComparePairs aggregate
// exactly the completed records.
func TestMigrationRecordFields(t *testing.T) {
	opts := regionCollapseOpts(true)
	opts.Migration.Ranked = true
	migrating, err := RunScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	pinnedOpts := opts
	pinnedOpts.Migration.Enabled = false
	pinned, err := RunScenario(pinnedOpts)
	if err != nil {
		t.Fatal(err)
	}

	completed := map[string]int{}
	ranked := 0
	for _, name := range migrating.Fleet.Apps() {
		recs := migrating.Fleet.App(name).Migrations
		prev := 0.0
		for i, m := range recs {
			if m.App != name {
				t.Errorf("%s record %d carries App=%q", name, i, m.App)
			}
			if m.DecidedAt <= 0 {
				t.Errorf("%s record %d: DecidedAt=%v, want >0 (nothing migrates at admission)", name, i, m.DecidedAt)
			}
			if m.DecidedAt < prev {
				t.Errorf("%s records out of decision order: %v after %v", name, m.DecidedAt, prev)
			}
			prev = m.DecidedAt
			switch {
			case m.Completed():
				if m.CompletedAt <= m.DecidedAt {
					t.Errorf("%s record %d: CompletedAt=%v not after DecidedAt=%v (draining takes time)",
						name, i, m.CompletedAt, m.DecidedAt)
				}
				if m.Err != nil {
					t.Errorf("%s record %d: completed but Err=%v", name, i, m.Err)
				}
				completed[name]++
			default:
				if m.CompletedAt != -1 {
					t.Errorf("%s record %d: not completed but CompletedAt=%v, want -1", name, i, m.CompletedAt)
				}
				if m.Drained {
					t.Errorf("%s record %d: not completed but Drained", name, i)
				}
			}
			if m.Err != nil && m.Completed() {
				t.Errorf("%s record %d: both Err and completion", name, i)
			}
			if m.Ranked {
				ranked++
				if m.TargetHealth < m.SourceHealth {
					t.Errorf("%s record %d: ranked target measurably worse than source (%.3f < %.3f)",
						name, i, m.TargetHealth, m.SourceHealth)
				}
			}
		}
	}
	if ranked == 0 {
		t.Fatal("ranked scenario produced no ranked records (region health index never warm?)")
	}

	// Summaries count exactly the completed records.
	for _, s := range migrating.Summaries {
		if s.Migrations != completed[s.Name] {
			t.Errorf("%s summary counts %d migrations, records say %d completed",
				s.Name, s.Migrations, completed[s.Name])
		}
	}

	// ComparePairs carries the counts through to the pinned-vs-migrating view.
	pairs := ComparePairs(pinned.Summaries, migrating.Summaries)
	if len(pairs) != len(pinned.Summaries) {
		t.Fatalf("ComparePairs dropped apps: %d pairs from %d summaries", len(pairs), len(pinned.Summaries))
	}
	total := 0
	for _, p := range pairs {
		if p.A.Migrations != 0 {
			t.Errorf("%s migrated %d times in the pinned run", p.Name, p.A.Migrations)
		}
		if p.B.Migrations != completed[p.Name] {
			t.Errorf("%s pair B counts %d migrations, want %d", p.Name, p.B.Migrations, completed[p.Name])
		}
		total += p.B.Migrations
	}
	if agg := Aggregate(migrating.Summaries); agg.Migrations != total {
		t.Errorf("aggregate counts %d migrations, pairs sum to %d", agg.Migrations, total)
	}
	if total == 0 {
		t.Fatal("region-collapse scenario completed no migrations")
	}
}
