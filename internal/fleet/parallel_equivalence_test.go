package fleet_test

import (
	"reflect"
	"testing"

	"archadapt/internal/chaos"
	"archadapt/internal/fleet"
)

// The parallel execution plane's contract: Workers is a pure throughput
// knob. Every scenario in the catalog (SCENARIOS.md) — including the
// fuzzer-promoted entries — must produce byte-identical summaries, migration
// records and fingerprints at Workers ∈ {1, 2, 4}, with Workers=1 the
// retained single-threaded oracle. This file lives in package fleet_test so
// it can hold the runs to the chaos engine's Fingerprint, which folds in the
// summary table, per-migration records, rejections, the slot ledger and the
// migration high-water mark.

var workerCounts = []int{1, 2, 4}

// runAt runs one catalog entry's options at the given worker count.
func runAt(t *testing.T, opts fleet.ScenarioOptions, workers int) *fleet.ScenarioResult {
	t.Helper()
	opts.Workers = workers
	res, err := fleet.RunScenario(opts)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return res
}

func TestCatalogParallelEquivalence(t *testing.T) {
	for _, e := range fleet.Catalog() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			oracle := runAt(t, e.Opts, 1)
			oracleFP := chaos.Fingerprint(oracle)
			for _, w := range workerCounts[1:] {
				res := runAt(t, e.Opts, w)
				if !reflect.DeepEqual(res.Summaries, oracle.Summaries) {
					t.Fatalf("workers=%d summaries diverge from the serial oracle:\noracle:\n%s\nparallel:\n%s",
						w, oracle.Table(), res.Table())
				}
				if fp := chaos.Fingerprint(res); fp != oracleFP {
					t.Fatalf("workers=%d fingerprint diverges from the serial oracle:\n--- oracle\n%s\n--- workers=%d\n%s",
						w, oracleFP, w, fp)
				}
				for _, name := range oracle.Fleet.Apps() {
					om := oracle.Fleet.App(name).Migrations
					pm := res.Fleet.App(name).Migrations
					if !reflect.DeepEqual(om, pm) {
						t.Fatalf("workers=%d: %s migration records diverge:\n%+v\nvs\n%+v", w, name, om, pm)
					}
				}
			}
		})
	}
}

// TestParallelWorkerAffinity pins the shard-to-worker affinity layout: app i
// belongs to worker group i mod Workers, stable across the run, and a serial
// fleet keeps everything in group 0.
func TestParallelWorkerAffinity(t *testing.T) {
	opts := fleet.ScenarioOptions{Apps: 6, Seed: 3, Duration: 60, Workers: 4, CrushStart: -1}
	res, err := fleet.RunScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range res.Fleet.Apps() {
		if got, want := res.Fleet.App(name).WorkerAffinity(), i%4; got != want {
			t.Errorf("app %d affinity %d, want %d", i, got, want)
		}
	}
	opts.Workers = 1
	serial, err := fleet.RunScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range serial.Fleet.Apps() {
		if got := serial.Fleet.App(name).WorkerAffinity(); got != 0 {
			t.Errorf("serial fleet app %d affinity %d, want 0", i, got)
		}
	}
}

// TestParallelSolverExercised guards against the equivalence suite passing
// vacuously: a parallel catalog-style run must actually dispatch
// multi-component solves to the worker pool.
func TestParallelSolverExercised(t *testing.T) {
	opts := fleet.ScenarioOptions{
		Apps: 6, Seed: 11, Duration: 240, Adaptive: true, Workers: 4,
		CrushStart: 120, CrushStagger: 0, CrushDuration: 60,
	}
	run, err := fleet.StartScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	res := run.Finish()
	st := res.Fleet.Net.Stats()
	if st.ParallelFills == 0 {
		t.Fatalf("no multi-component solve hit the worker pool (stats %+v)", st)
	}
}
