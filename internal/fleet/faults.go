// Grid-scale fault injection: the degradations the scenario catalog and the
// chaos engine aim at a running fleet. Three families, all deterministic and
// all built on the same refcounted link-contention bookkeeping so overlapping
// injections compose instead of corrupting each other:
//
//   - per-application crushes (CrushPrimary, CrushServers): starve the access
//     links of one app's active servers, Figure 7-style targeted competition;
//   - backbone contention (CrushBackbone): load a fraction of the backbone
//     chain, correlated cross-region degradation;
//   - region failure (FailRegion): starve every access link under one router,
//     whoever owns the processes there.
//
// Every injector has a restore, every restore validates its pairing —
// restoring something that was never failed returns an error instead of
// silently clearing link state another injector still owns — and the
// backbone/region injectors refcount repeated failures, so a nested
// FailRegion holds the region down until the matching number of restores.
// Partial restores (RestoreBackboneFraction, RestoreRegionFraction) lift a
// subset of a standing failure's links, the half-recovered grids the chaos
// engine races drains against.
package fleet

import (
	"fmt"
	"math"

	"archadapt/internal/netsim"
)

// --- per-application access-link contention ---

// CrushPrimary starves the access links of an application's primary-group
// servers that are active right now — including any spares repairs have
// recruited — (Figure 7-style bandwidth competition, aimed at one
// application), leaving ≈5 Kbps available — below the 10 Kbps floor, so the
// bandwidth tactic must move the clients to another group. Links are
// refcounted across applications: when apps share hosts, one app's restore
// never lifts another's still-active contention.
func (f *Fleet) CrushPrimary(name string) error {
	a := f.apps[name]
	if a == nil {
		return fmt.Errorf("fleet: no application %q", name)
	}
	if !a.Live() {
		return fmt.Errorf("fleet: application %q is retired", name)
	}
	if len(a.crushed) > 0 {
		return nil // already crushed
	}
	// Batched: one reflow for the whole group's links, not one per link.
	f.crushServersOf(a, []string{a.Opspec.Groups[0].Name})
	return nil
}

// CrushServers starves the access links of every group's active servers —
// the whole application's region degrades at once, so intra-app repair
// (move the clients to another group) has nowhere good to go. This is the
// degradation migration exists for; RestorePrimary lifts it.
func (f *Fleet) CrushServers(name string) error {
	a := f.apps[name]
	if a == nil {
		return fmt.Errorf("fleet: no application %q", name)
	}
	if !a.Live() {
		return fmt.Errorf("fleet: application %q is retired", name)
	}
	if len(a.crushed) > 0 {
		return nil // already crushed
	}
	f.crushServersOf(a, a.Sys.Groups())
	return nil
}

// RestorePrimary lifts the competition installed by CrushPrimary or
// CrushServers (whatever links were crushed for this application, wherever
// it has since migrated to).
func (f *Fleet) RestorePrimary(name string) {
	a := f.apps[name]
	if a == nil {
		return
	}
	f.Net.Batch(func() {
		for _, link := range a.crushed {
			f.dropCrush(link)
		}
	})
	a.crushed = nil
}

// crushServersOf starves the access links of the named groups' currently
// active servers, leaving ≈5 Kbps available (below the 10 Kbps floor).
// Links are refcounted across applications and region failures.
func (f *Fleet) crushServersOf(a *App, groups []string) {
	f.Net.Batch(func() {
		for _, g := range groups {
			for _, srv := range a.Sys.ActiveServersOf(g) {
				link := f.Grid.AccessLink(a.Sys.Server(srv).Host)
				f.addCrush(link)
				a.crushed = append(a.crushed, link)
			}
		}
	})
}

// addCrush refcounts contention on one access link, installing the
// background load on the first reference.
func (f *Fleet) addCrush(link netsim.LinkID) {
	f.crushes[link]++
	if f.crushes[link] == 1 {
		f.Net.SetBackgroundBoth(link, f.Grid.Spec.AccessBps-5e3)
	}
}

// dropCrush releases one reference, lifting the load on the last.
func (f *Fleet) dropCrush(link netsim.LinkID) {
	f.crushes[link]--
	if f.crushes[link] <= 0 {
		delete(f.crushes, link)
		f.Net.SetBackgroundBoth(link, 0)
	}
}

// --- backbone contention ---

// CrushBackbone loads a fraction of the backbone links with background
// traffic, leaving leaveBps available per direction — correlated
// cross-region contention rather than a per-app access-link crush. Links are
// taken in Grid.Backbone order (the chain first, then the chords), so
// fraction 0.5 loads the first half of the chain. Repeated crushes nest: the
// first call's fraction and leaveBps stay in force, and the contention lifts
// only when RestoreBackbone has balanced every call.
func (f *Fleet) CrushBackbone(fraction, leaveBps float64) {
	f.backboneRefs++
	if f.backboneRefs > 1 {
		return // already crushed; the matching restore just unnests
	}
	n := int(fraction * float64(len(f.Grid.Backbone)))
	if n < 1 {
		n = 1
	}
	if n > len(f.Grid.Backbone) {
		n = len(f.Grid.Backbone)
	}
	bg := f.Grid.Spec.BackboneBps - leaveBps
	if bg < 0 {
		bg = 0
	}
	f.Net.Batch(func() {
		for _, link := range f.Grid.Backbone[:n] {
			f.Net.SetBackgroundBoth(link, bg)
			f.backboneCrushed = append(f.backboneCrushed, link)
		}
	})
}

// RestoreBackbone balances one CrushBackbone call, lifting the remaining
// contention when every crush has been matched. Restoring a backbone that
// was never crushed is an error and changes nothing — an unbalanced restore
// must not clear link state some other injector still owns.
func (f *Fleet) RestoreBackbone() error {
	if f.backboneRefs == 0 {
		return fmt.Errorf("fleet: backbone is not crushed")
	}
	f.backboneRefs--
	if f.backboneRefs > 0 {
		return nil // still nested inside an outer crush
	}
	f.Net.Batch(func() {
		for _, link := range f.backboneCrushed {
			f.Net.SetBackgroundBoth(link, 0)
		}
	})
	f.backboneCrushed = nil
	return nil
}

// RestoreBackboneFraction lifts the given fraction of the still-crushed
// backbone links (rounded up, in crush order) without balancing the crush
// itself — a partial recovery mid-failure. The remaining links stay loaded
// until RestoreBackbone balances every CrushBackbone call.
func (f *Fleet) RestoreBackboneFraction(fraction float64) error {
	if f.backboneRefs == 0 {
		return fmt.Errorf("fleet: backbone is not crushed")
	}
	n := int(math.Ceil(fraction * float64(len(f.backboneCrushed))))
	if n < 0 {
		n = 0
	}
	if n > len(f.backboneCrushed) {
		n = len(f.backboneCrushed)
	}
	f.Net.Batch(func() {
		for _, link := range f.backboneCrushed[:n] {
			f.Net.SetBackgroundBoth(link, 0)
		}
	})
	f.backboneCrushed = append([]netsim.LinkID(nil), f.backboneCrushed[n:]...)
	return nil
}

// --- region failure ---

// FailRegion starves every access link under router r (0-based index) —
// region-wide failure injection: every process on the region's hosts,
// whichever application owns it, loses its connectivity. Link contention is
// refcounted with the per-app crushes, and repeated failures of the same
// region nest: the region recovers only when RestoreRegion has balanced
// every FailRegion call.
func (f *Fleet) FailRegion(r int) error {
	if r < 0 || r >= len(f.Grid.HostsByRouter) {
		return fmt.Errorf("fleet: no router %d", r)
	}
	f.regionFailRefs[r]++
	if f.regionFailRefs[r] > 1 {
		return nil // already failed; the matching restore just unnests
	}
	f.regionFailedAt[r] = f.K.Now()
	f.Net.Batch(func() {
		for _, h := range f.Grid.HostsByRouter[r] {
			link := f.Grid.AccessLink(h)
			f.addCrush(link)
			f.regionCrushed[r] = append(f.regionCrushed[r], link)
		}
	})
	return nil
}

// RestoreRegion balances one FailRegion call, lifting the region's remaining
// crushed links when every failure has been matched. Restoring a region that
// is not failed is an error and changes nothing.
func (f *Fleet) RestoreRegion(r int) error {
	if f.regionFailRefs[r] == 0 {
		return fmt.Errorf("fleet: region %d is not failed", r)
	}
	f.regionFailRefs[r]--
	if f.regionFailRefs[r] > 0 {
		return nil // still nested inside an outer failure
	}
	f.Net.Batch(func() {
		for _, link := range f.regionCrushed[r] {
			f.dropCrush(link)
		}
	})
	delete(f.regionCrushed, r)
	delete(f.regionFailRefs, r)
	delete(f.regionFailedAt, r)
	return nil
}

// RestoreRegionFraction lifts the given fraction of a failed region's
// still-crushed access links (rounded up, in failure order) without
// balancing the failure itself — a half-recovered region. The rest stay
// starved until RestoreRegion balances every FailRegion call.
func (f *Fleet) RestoreRegionFraction(r int, fraction float64) error {
	if f.regionFailRefs[r] == 0 {
		return fmt.Errorf("fleet: region %d is not failed", r)
	}
	links := f.regionCrushed[r]
	n := int(math.Ceil(fraction * float64(len(links))))
	if n < 0 {
		n = 0
	}
	if n > len(links) {
		n = len(links)
	}
	f.Net.Batch(func() {
		for _, link := range links[:n] {
			f.dropCrush(link)
		}
	})
	f.regionCrushed[r] = append([]netsim.LinkID(nil), links[n:]...)
	return nil
}

// targetFailedSince reports whether any host of a staged assignment sits in
// a region whose current failure began after the given decision time — the
// drain-race check: a migration must not cut over into a region that failed
// underneath it, but a failure that predates the decision was already priced
// in by targeting (LegacyTargeting deliberately places into failed regions;
// the ranked index steers around them).
func (f *Fleet) targetFailedSince(asg *Assignment, decidedAt float64) (int, bool) {
	failed, region := false, -1
	asg.hosts(func(h netsim.NodeID) {
		if failed {
			return
		}
		r := f.Grid.RouterIndex(h)
		if r >= 0 && f.regionFailRefs[r] > 0 && f.regionFailedAt[r] > decidedAt {
			failed, region = true, r
		}
	})
	return region, failed
}

// --- the fault-schedule vocabulary (ScenarioOptions.Faults) ---

// FaultKind names one injectable fault in a scenario's fault schedule.
type FaultKind string

const (
	// FaultCrushPrimary crushes App's primary-group server links;
	// FaultCrushAll crushes every group's. Duration > 0 schedules the
	// matching RestorePrimary; FaultRestoreApp restores explicitly.
	FaultCrushPrimary FaultKind = "crush-primary"
	FaultCrushAll     FaultKind = "crush-all"
	FaultRestoreApp   FaultKind = "restore-app"

	// FaultBackboneCrush loads Fraction of the backbone down to LeaveBps;
	// Duration > 0 schedules the matching RestoreBackbone.
	// FaultBackbonePartialRestore lifts Fraction of the crushed links early.
	FaultBackboneCrush          FaultKind = "backbone-crush"
	FaultBackboneRestore        FaultKind = "backbone-restore"
	FaultBackbonePartialRestore FaultKind = "backbone-partial-restore"

	// FaultRegionFail starves region Router; Duration > 0 schedules the
	// matching RestoreRegion. FaultRegionPartialRestore lifts Fraction of
	// the failed links early.
	FaultRegionFail           FaultKind = "region-fail"
	FaultRegionRestore        FaultKind = "region-restore"
	FaultRegionPartialRestore FaultKind = "region-partial-restore"

	// FaultRetire retires App; FaultMigrate forces an operator migration of
	// App (works in pinned mode too — the operator path needs no policy).
	FaultRetire  FaultKind = "retire"
	FaultMigrate FaultKind = "migrate"
)

// Fault is one scheduled event in a scenario's fault schedule — the
// machine-writable form of the injector calls the hand-written scenarios
// place directly on the kernel. All fields are plain values so a schedule
// (and the options carrying it) round-trips through JSON.
type Fault struct {
	// At is the injection time in simulated seconds.
	At   float64
	Kind FaultKind
	// App indexes the scenario's application (app00, app01, …) for the
	// per-app kinds.
	App int
	// Router is the region index for the region kinds.
	Router int
	// Fraction and LeaveBps parameterize the backbone kinds; Fraction also
	// sizes the partial restores.
	Fraction float64
	LeaveBps float64
	// Duration > 0 auto-schedules the fault's matching restore at
	// At+Duration. Ignored by the restore and one-shot kinds.
	Duration float64
}

// apply injects one fault now. Injector errors are deliberately ignored:
// chaos schedules legitimately race restores against each other and against
// retirement, and an unbalanced call is defined to be a safe no-op.
func (f *Fleet) applyFault(flt Fault, appName func(int) string) {
	switch flt.Kind {
	case FaultCrushPrimary:
		_ = f.CrushPrimary(appName(flt.App))
	case FaultCrushAll:
		_ = f.CrushServers(appName(flt.App))
	case FaultRestoreApp:
		f.RestorePrimary(appName(flt.App))
	case FaultBackboneCrush:
		f.CrushBackbone(flt.Fraction, flt.LeaveBps)
	case FaultBackboneRestore:
		_ = f.RestoreBackbone()
	case FaultBackbonePartialRestore:
		_ = f.RestoreBackboneFraction(flt.Fraction)
	case FaultRegionFail:
		_ = f.FailRegion(flt.Router)
	case FaultRegionRestore:
		_ = f.RestoreRegion(flt.Router)
	case FaultRegionPartialRestore:
		_ = f.RestoreRegionFraction(flt.Router, flt.Fraction)
	case FaultRetire:
		if a := f.App(appName(flt.App)); a != nil && a.Live() {
			_ = f.Retire(appName(flt.App))
		}
	case FaultMigrate:
		_ = f.Migrate(appName(flt.App))
	}
}

// restoreKind returns the restore paired with an injection kind (for
// Fault.Duration auto-scheduling), or "" when the kind has no restore.
func (k FaultKind) restoreKind() FaultKind {
	switch k {
	case FaultCrushPrimary, FaultCrushAll:
		return FaultRestoreApp
	case FaultBackboneCrush:
		return FaultBackboneRestore
	case FaultRegionFail:
		return FaultRegionRestore
	}
	return ""
}
