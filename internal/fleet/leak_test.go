package fleet

import (
	"runtime"
	"testing"
	"time"
)

// goroutinesSettle polls until the live goroutine count drops back to the
// baseline (the runtime may retire helpers asynchronously) and returns the
// last observed count.
func goroutinesSettle(baseline int) int {
	n := runtime.NumGoroutine()
	for i := 0; i < 50 && n > baseline; i++ {
		time.Sleep(2 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// The worker pool's goroutines must not outlive the fleet. WorkerPool.Close
// waits on the workers (wg.Wait), so after Fleet.Close returns the count must
// be back at baseline — for a full run, for a fleet closed without ever
// running, and for a double Close.
func TestFleetCloseReleasesWorkerGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	// Full lifecycle: create, run, Close (Finish closes the fleet).
	res, err := RunScenario(ScenarioOptions{
		Apps: 4, Seed: 1, Duration: 60, Workers: 8, CrushStart: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := goroutinesSettle(baseline); got > baseline {
		t.Fatalf("after run+Close: %d goroutines, baseline %d — worker pool leaked", got, baseline)
	}

	// Close without ever running virtual time.
	run, err := StartScenario(ScenarioOptions{
		Apps: 4, Seed: 1, Duration: 60, Workers: 8, CrushStart: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	run.Fleet.Close()
	if got := goroutinesSettle(baseline); got > baseline {
		t.Fatalf("after Close-without-run: %d goroutines, baseline %d", got, baseline)
	}
	// Close is idempotent — a second Close must not panic or hang.
	run.Fleet.Close()

	_ = res
}
