package workload

import (
	"math"
	"testing"

	"archadapt/internal/app"
	"archadapt/internal/arrivals"
	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

func rig(t *testing.T) (*sim.Kernel, *netsim.Network, *app.System, Links) {
	t.Helper()
	k := sim.NewKernel()
	net := netsim.New(k)
	r1 := net.AddRouter("r1")
	r2 := net.AddRouter("r2")
	h1 := net.AddHost("h1")
	h2 := net.AddHost("h2")
	q := net.AddHost("q")
	net.Connect(h1, r1, LinkCapacity, 1e-3)
	net.Connect(h2, r2, LinkCapacity, 1e-3)
	net.Connect(q, r2, LinkCapacity, 1e-3)
	sg1 := net.Connect(r1, r2, LinkCapacity, 1e-3)
	r3 := net.AddRouter("r3")
	net.Connect(q, r3, LinkCapacity, 1e-3)
	sg2 := net.Connect(r1, r3, LinkCapacity, 1e-3)
	a := app.New(k, net, q)
	_ = a.CreateQueue("G")
	a.AddServer("S", h2, "G", 0.05, 0)
	_ = a.Activate("S")
	a.AddClient("C1", h1, "G", 0, sim.NewRand(1))
	return k, net, a, Links{SG1Path: sg1, SG2Path: sg2}
}

func TestScheduleOrderedInstall(t *testing.T) {
	k := sim.NewKernel()
	var got []string
	s := &Schedule{}
	s.Add(10, "b", func() { got = append(got, "b") })
	s.Add(5, "a", func() { got = append(got, "a") })
	s.Add(10, "c", func() { got = append(got, "c") })
	s.Install(k)
	k.RunAll(0)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("order %v", got)
	}
}

func TestPaperPhases(t *testing.T) {
	k, net, a, links := rig(t)
	sched := Paper(net, a, links, sim.NewRand(9))
	if len(sched.Steps) != 5 {
		t.Fatalf("steps=%d, want 5", len(sched.Steps))
	}
	sched.Install(k)

	check := func(at float64, wantSG1, wantSG2, wantRate float64, stressSize bool) {
		k.Run(at)
		cli := a.Client("C1")
		if got := LinkCapacity - net.Background(links.SG1Path, netsim.Fwd); math.Abs(got-wantSG1) > 1 {
			t.Fatalf("t=%v SG1 avail=%v, want %v", at, got, wantSG1)
		}
		if got := LinkCapacity - net.Background(links.SG2Path, netsim.Fwd); math.Abs(got-wantSG2) > 1 {
			t.Fatalf("t=%v SG2 avail=%v, want %v", at, got, wantSG2)
		}
		if cli.Rate != wantRate {
			t.Fatalf("t=%v rate=%v, want %v", at, cli.Rate, wantRate)
		}
		if stressSize {
			if v := cli.RespBits(); v != StressResp {
				t.Fatalf("t=%v respBits=%v, want fixed %v", at, v, StressResp)
			}
		} else {
			// Baseline sizes jitter around the median.
			sum := 0.0
			for i := 0; i < 200; i++ {
				sum += cli.RespBits()
			}
			if mean := sum / 200; mean < BaselineResp/2 || mean > BaselineResp*2 {
				t.Fatalf("t=%v baseline mean resp %v", at, mean)
			}
		}
	}
	check(10, LinkCapacity, LinkCapacity, BaselineRate, false)
	check(130, CrushedAvail, HighAvail, BaselineRate, false)
	check(610, ReducedAvail, ModerateAvail, StressRate, true)
	check(1210, ModerateAvail, RestoredAvail, BaselineRate, false)
}

func TestPaperStopsClients(t *testing.T) {
	k, net, a, links := rig(t)
	Paper(net, a, links, sim.NewRand(9)).Install(k)
	k.Run(RunEnd + 100)
	before := a.Client("C1").Responses()
	k.Run(RunEnd + 400)
	after := a.Client("C1").Responses()
	// A few in-flight responses may land, but generation has stopped.
	if after > before+5 {
		t.Fatalf("clients still generating after RunEnd: %d -> %d", before, after)
	}
}

func TestMatchedSequences(t *testing.T) {
	// Same seed ⇒ identical response-size sequences (the paper's §5.1
	// control-variable requirement).
	sizes := func(seed uint64) []float64 {
		k, net, a, links := rig(t)
		_ = k
		Paper(net, a, links, sim.NewRand(seed)).Install(k)
		k.Run(1)
		cli := a.Client("C1")
		out := make([]float64, 50)
		for i := range out {
			out[i] = cli.RespBits()
		}
		return out
	}
	a, b := sizes(5), sizes(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed sequences diverge")
		}
	}
	c := sizes(6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestOpenLoopTracePhases(t *testing.T) {
	const users = 50_000
	times, rates := OpenLoopTrace(users)
	if len(times) != 4 || len(rates) != 4 {
		t.Fatalf("got %d/%d points, want 4/4", len(times), len(rates))
	}
	// The aggregate envelope is the paper's: 6 req/s baseline, 12 req/s
	// during the load phase, quiet after minute 30 — at any population.
	wantAgg := []float64{6, 12, 6, 0}
	wantAt := []float64{0, PhaseBWEnd, PhaseLoadEnd, RunEnd}
	for i := range rates {
		if times[i] != wantAt[i] {
			t.Fatalf("times[%d]=%v, want %v", i, times[i], wantAt[i])
		}
		if agg := rates[i] * users; math.Abs(agg-wantAgg[i]) > 1e-9 {
			t.Fatalf("phase %d aggregate %v req/s, want %v", i, agg, wantAgg[i])
		}
	}
	// As an arrivals.Trace the schedule integrates to the paper's offered
	// request count over the 30-minute run: 600s·6 + 600s·12 + 600s·6.
	tr := arrivals.Trace{Times: times, Rates: rates}
	got := arrivals.Integrate(tr, 0, RunEnd, 1800) * users
	if want := 600.0*6 + 600*12 + 600*6; math.Abs(got-want) > want*1e-3 {
		t.Fatalf("offered requests %v, want %v", got, want)
	}
	if tr.Rate(RunEnd+1) != 0 {
		t.Fatal("rate should be zero after RunEnd")
	}
}

func TestOscillatorAlternates(t *testing.T) {
	k, net, _, links := rig(t)
	Oscillator(net, links, 100, 400, 100).Install(k)
	k.Run(150)
	if avail := LinkCapacity - net.Background(links.SG1Path, netsim.Fwd); avail > CrushedAvail+1 {
		t.Fatalf("phase 1 should crush SG1: %v", avail)
	}
	k.Run(250)
	if avail := LinkCapacity - net.Background(links.SG1Path, netsim.Fwd); avail < HighAvail-1 {
		t.Fatalf("phase 2 should restore SG1: %v", avail)
	}
	if avail := LinkCapacity - net.Background(links.SG2Path, netsim.Fwd); avail > CrushedAvail+1 {
		t.Fatalf("phase 2 should crush SG2: %v", avail)
	}
	k.Run(500)
	if avail := LinkCapacity - net.Background(links.SG1Path, netsim.Fwd); avail < LinkCapacity-1 {
		t.Fatalf("end should restore both: %v", avail)
	}
}
