// Package workload generates the paper's experimental conditions: the
// Figure 7 stepping functions for bandwidth competition and server load.
// "We needed to arrange the bandwidth competition so that there were periods
// of time where the bandwidth would cause the latency of some clients to be
// high. Similarly, the clients were controlled so that they requested larger
// amounts of information more frequently for a period of time."
package workload

import (
	"sort"

	"archadapt/internal/app"
	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

// Step is one scheduled change of experimental conditions.
type Step struct {
	At    float64
	Label string
	Apply func()
}

// Schedule is an ordered set of steps installed on the kernel.
type Schedule struct {
	Steps []Step
}

// Add appends a step.
func (s *Schedule) Add(at float64, label string, apply func()) {
	s.Steps = append(s.Steps, Step{At: at, Label: label, Apply: apply})
}

// Install schedules every step; steps are stable-sorted by time.
func (s *Schedule) Install(k *sim.Kernel) {
	steps := append([]Step(nil), s.Steps...)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
	for _, st := range steps {
		st := st
		k.At(st.At, st.Apply)
	}
}

// Phases of the paper's 30-minute run (Figure 7).
const (
	PhaseQuiesceEnd = 120.0  // 0–2 min: deployment
	PhaseBWEnd      = 600.0  // 2–10 min: crush C3,C4 ↔ SG1 bandwidth
	PhaseLoadEnd    = 1200.0 // 10–20 min: 20KB @ 2/s from all clients
	RunEnd          = 1800.0 // 20–30 min: restore C3,C4 ↔ SG2 bandwidth
)

// Sizes and rates. Baseline matches the paper's design inputs (small
// requests, ~20 KB-class replies, ≈6 req/s aggregate from six clients); the
// stress phase is Figure 7's "20KB @ >2/sec" from every client.
const (
	BaselineRate  = 1.0         // req/s per client
	StressRate    = 2.0         // req/s per client (Fig. 7: ">2/sec")
	BaselineResp  = 8 * 8192.0  // bits (median; jittered per request)
	StressResp    = 20 * 8192.0 // bits (fixed 20 KB)
	RequestBits   = 0.5 * 8192.0
	RespSizeSigma = 0.35
)

// Links identifies the two contested paths of Figure 7 in the testbed
// topology: C3,C4↔SG1 crosses SG1Path; C3,C4↔SG2 crosses SG2Path.
type Links struct {
	SG1Path netsim.LinkID // router link between C3/C4's router and SG1's
	SG2Path netsim.LinkID // router link between C3/C4's router and SG2's
}

// Competition levels (available bandwidth left on the contested links).
const (
	LinkCapacity = 10e6
	// CrushedAvail starves the path below the 10 Kbps analysis floor.
	CrushedAvail = 5e3
	// ReducedAvail is Figure 7's 2 Mbps step.
	ReducedAvail = 2e6
	// ModerateAvail is the 3 Mbps "moderate bandwidth ... between the
	// opposite server groups".
	ModerateAvail = 3e6
	// HighAvail is the 5 Mbps step.
	HighAvail = 5e6
	// RestoredAvail is the 9 Mbps step of the final phase.
	RestoredAvail = 9e6
)

func setAvail(net *netsim.Network, link netsim.LinkID, avail float64) {
	net.SetBackgroundBoth(link, LinkCapacity-avail)
}

// Paper builds the Figure 7 schedule against a system and its contested
// links. rng seeds per-client response-size jitter; the same seed produces
// the same request/response sequence, the paper's control-variable trick
// ("seeding the clients so that the size of requests and responses occurred
// in the same sequence in both experiments").
func Paper(net *netsim.Network, sys *app.System, links Links, rng *sim.Rand) *Schedule {
	s := &Schedule{}
	baseline := func() {
		for _, name := range sys.Clients() {
			cli := sys.Client(name)
			r := rng.Fork("resp:" + name)
			cli.Rate = BaselineRate
			cli.ReqBits = func() float64 { return RequestBits }
			cli.RespBits = func() float64 { return r.LogNormalAround(BaselineResp, RespSizeSigma) }
		}
	}
	s.Add(0, "baseline traffic; all paths idle", func() {
		baseline()
		setAvail(net, links.SG1Path, LinkCapacity)
		setAvail(net, links.SG2Path, LinkCapacity)
		sys.Start()
	})
	s.Add(PhaseQuiesceEnd, "crush C3,C4<->SG1; SG2 path at 5 Mbps", func() {
		setAvail(net, links.SG1Path, CrushedAvail)
		setAvail(net, links.SG2Path, HighAvail)
	})
	s.Add(PhaseBWEnd, "20KB @ 2/s from all clients; SG1 path 2 Mbps; SG2 path 3 Mbps", func() {
		for _, name := range sys.Clients() {
			cli := sys.Client(name)
			cli.Rate = StressRate
			cli.RespBits = func() float64 { return StressResp }
		}
		setAvail(net, links.SG1Path, ReducedAvail)
		setAvail(net, links.SG2Path, ModerateAvail)
	})
	s.Add(PhaseLoadEnd, "baseline load; restore C3,C4<->SG2 to 9 Mbps; SG1 path 3 Mbps", func() {
		baseline()
		setAvail(net, links.SG2Path, RestoredAvail)
		setAvail(net, links.SG1Path, ModerateAvail)
	})
	s.Add(RunEnd, "stop clients", func() { sys.StopClients() })
	return s
}

// PaperClients is the testbed's client count (C1..C6), the population the
// paper's aggregate offered load is quoted against.
const PaperClients = 6

// OpenLoopTrace maps the Figure 7 request-rate phases onto an open-loop
// arrival step trace for a modeled population of `users`: the aggregate
// offered load reproduces the paper's six clients (6×1 req/s baseline,
// 6×2 req/s during the 10–20 min load phase, quiet after minute 30), spread
// evenly as per-user rates. Feed the result to a trace-kind arrival spec —
// the open-loop engine then drives the paper's workload envelope at any
// population size for the same simulation cost.
func OpenLoopTrace(users int) (times, rates []float64) {
	if users < 1 {
		users = 1
	}
	phases := []struct{ at, aggregate float64 }{
		{0, PaperClients * BaselineRate},
		{PhaseBWEnd, PaperClients * StressRate},
		{PhaseLoadEnd, PaperClients * BaselineRate},
		{RunEnd, 0},
	}
	for _, p := range phases {
		times = append(times, p.at)
		rates = append(rates, p.aggregate/float64(users))
	}
	return times, rates
}

// Oscillator is a synthetic §5.3 scenario: competition alternates between
// the two paths every `period` seconds during [from, to), making the
// bandwidth tactic ping-pong clients between groups — the oscillation the
// paper observed and proposed damping for.
func Oscillator(net *netsim.Network, links Links, from, to, period float64) *Schedule {
	s := &Schedule{}
	crushSG1 := true
	for t := from; t < to; t += period {
		t := t
		c := crushSG1
		s.Add(t, "alternate competition", func() {
			if c {
				setAvail(net, links.SG1Path, CrushedAvail)
				setAvail(net, links.SG2Path, HighAvail)
			} else {
				setAvail(net, links.SG1Path, HighAvail)
				setAvail(net, links.SG2Path, CrushedAvail)
			}
		})
		crushSG1 = !crushSG1
	}
	s.Add(to, "end oscillation", func() {
		setAvail(net, links.SG1Path, LinkCapacity)
		setAvail(net, links.SG2Path, LinkCapacity)
	})
	return s
}
