// Package gauges implements the middle level of the Figure 4 monitoring
// stack: gauges consume probe observations, interpret them as architectural
// properties, and disseminate reports on the gauge reporting bus.
//
// Three gauge types cover the paper's example: AverageLatency (per client),
// Load (queue length per server group) and Bandwidth (per client↔group
// connection, via the Remos substitute).
//
// The gauge *protocol* — creation, communication, deletion — is modeled with
// explicit per-message costs, because the paper measured that repair time
// ("averages 30 seconds") was dominated by "communicating to create and
// delete gauges", and proposed caching/relocating gauges as the fix. Manager
// implements both the destroy/recreate protocol and the caching extension.
//
// One Manager serves a whole fleet: applications attach through Leases that
// scope gauge names and anchor protocol exchanges at the leasing app's
// manager host, and gauges read probe observations from (and report onto)
// their application's bus.Shard. Lease.Close tears down an application's
// remaining gauges in one batched lifecycle pass at retirement, so a shared
// manager never leaks a retired tenant's gauges (asserted via
// Manager.Counts and Deployed).
package gauges

import (
	"archadapt/internal/bus"
	"archadapt/internal/netsim"
	"archadapt/internal/obs"
	"archadapt/internal/probes"
	"archadapt/internal/remos"
	"archadapt/internal/sim"
)

// TopicReport is the gauge-reporting-bus topic. Slots: Name=gauge,
// Target (client or group name), Kind ("client" | "group" | "clientRole"),
// Prop and V1=value.
const TopicReport = "gauge.report"

// Gauge is a deployed gauge instance.
type Gauge interface {
	// Name identifies the gauge (unique per manager).
	Name() string
	// Host is where the gauge executes.
	Host() netsim.NodeID
	// start/stop bracket the measurement activity; called by the Manager
	// once the lifecycle protocol completes.
	start()
	stop()
}

// report publishes one gauge report on the app's reporting shard. parent is
// the causal predecessor span (the gauge update that last fed the value);
// zero when tracing is off.
func report(sh *bus.Shard, src netsim.NodeID, gauge, target, kind, prop string, value float64, parent obs.SpanID) {
	sh.Publish(bus.Message{
		Topic:  TopicReport,
		Src:    src,
		Name:   gauge,
		Target: target,
		Kind:   kind,
		Prop:   prop,
		V1:     value,
		Parent: parent,
	})
}

// --- AverageLatency gauge ---

// LatencyGauge maintains a sliding-window average of one client's
// request-response latency and reports it periodically as the
// averageLatency property.
type LatencyGauge struct {
	name   string
	host   netsim.NodeID
	client string

	K      *sim.Kernel
	Probe  *bus.Shard // probe shard (input)
	Report *bus.Shard // gauge reporting shard (output)

	// Window is the sliding-window width in seconds; Period the reporting
	// interval.
	Window float64
	Period float64

	sub      *bus.Subscription
	stopTick func()
	samples  []latSample
	// lastUpd is the gauge-update span of the newest folded probe sample;
	// the next report parents on it (zero when tracing is off).
	lastUpd obs.SpanID
}

type latSample struct {
	t   sim.Time
	lat float64
}

// NewLatencyGauge creates (but does not start) a latency gauge for client,
// running on host (typically the client's machine).
func NewLatencyGauge(k *sim.Kernel, probeBus, reportBus *bus.Shard, host netsim.NodeID, client string, window, period float64) *LatencyGauge {
	return &LatencyGauge{
		name: "latency:" + client, host: host, client: client,
		K: k, Probe: probeBus, Report: reportBus,
		Window: window, Period: period,
	}
}

// Name implements Gauge.
func (g *LatencyGauge) Name() string { return g.name }

// Host implements Gauge.
func (g *LatencyGauge) Host() netsim.NodeID { return g.host }

// Average returns the current windowed average (0 when no samples).
func (g *LatencyGauge) Average() float64 {
	if len(g.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range g.samples {
		sum += s.lat
	}
	return sum / float64(len(g.samples))
}

func (g *LatencyGauge) start() {
	g.sub = g.Probe.Subscribe(g.host,
		bus.TopicAndField(probes.TopicResponse, "client", g.client),
		func(m bus.Message) {
			if tr := g.Probe.Tracer(); tr != nil {
				g.lastUpd = tr.Instant(obs.KindGaugeUpdate, m.Span, g.Probe.Label, g.name, m.V1, 0)
			}
			g.samples = append(g.samples, latSample{t: g.K.Now(), lat: m.V1})
		})
	g.stopTick = g.K.Ticker(g.K.Now()+g.Period, g.Period, func(now sim.Time) {
		cutoff := now - g.Window
		kept := g.samples[:0]
		for _, s := range g.samples {
			if s.t >= cutoff {
				kept = append(kept, s)
			}
		}
		g.samples = kept
		if len(g.samples) == 0 {
			return
		}
		report(g.Report, g.host, g.name, g.client, "client", "averageLatency", g.Average(), g.lastUpd)
	})
}

func (g *LatencyGauge) stop() {
	if g.sub != nil {
		g.Probe.Unsubscribe(g.sub)
		g.sub = nil
	}
	if g.stopTick != nil {
		g.stopTick()
		g.stopTick = nil
	}
	g.samples = nil
}

// Reset clears the window (used when a gauge is re-targeted under caching).
func (g *LatencyGauge) Reset() { g.samples = g.samples[:0] }

// --- Load gauge ---

// LoadGauge tracks one server group's queue length from probe samples and
// reports it as the load property.
type LoadGauge struct {
	name  string
	host  netsim.NodeID
	group string

	K      *sim.Kernel
	Probe  *bus.Shard
	Report *bus.Shard
	Period float64
	// Smooth is the EWMA coefficient in (0,1]; 1 reports raw samples.
	Smooth float64

	sub      *bus.Subscription
	stopTick func()
	value    float64
	seen     bool
	lastUpd  obs.SpanID
}

// NewLoadGauge creates a load gauge for a group, running on host (the queue
// machine).
func NewLoadGauge(k *sim.Kernel, probeBus, reportBus *bus.Shard, host netsim.NodeID, group string, period float64) *LoadGauge {
	return &LoadGauge{
		name: "load:" + group, host: host, group: group,
		K: k, Probe: probeBus, Report: reportBus, Period: period, Smooth: 1.0,
	}
}

// Name implements Gauge.
func (g *LoadGauge) Name() string { return g.name }

// Host implements Gauge.
func (g *LoadGauge) Host() netsim.NodeID { return g.host }

// Value returns the current (smoothed) load.
func (g *LoadGauge) Value() float64 { return g.value }

func (g *LoadGauge) start() {
	g.sub = g.Probe.Subscribe(g.host,
		bus.TopicAndField(probes.TopicQueue, "group", g.group),
		func(m bus.Message) {
			if tr := g.Probe.Tracer(); tr != nil {
				g.lastUpd = tr.Instant(obs.KindGaugeUpdate, m.Span, g.Probe.Label, g.name, m.V1, 0)
			}
			v := m.V1
			if !g.seen || g.Smooth >= 1 {
				g.value = v
				g.seen = true
				return
			}
			g.value = g.Smooth*v + (1-g.Smooth)*g.value
		})
	g.stopTick = g.K.Ticker(g.K.Now()+g.Period, g.Period, func(sim.Time) {
		if !g.seen {
			return
		}
		report(g.Report, g.host, g.name, g.group, "group", "load", g.value, g.lastUpd)
	})
}

func (g *LoadGauge) stop() {
	if g.sub != nil {
		g.Probe.Unsubscribe(g.sub)
		g.sub = nil
	}
	if g.stopTick != nil {
		g.stopTick()
		g.stopTick = nil
	}
}

// --- Bandwidth gauge ---

// BandwidthGauge periodically queries Remos for the available bandwidth
// between a client and its server group and reports it as the client role's
// bandwidth property. Re-targeting after a move repair goes through the
// Manager (destroy/recreate, or Retarget under caching).
type BandwidthGauge struct {
	name   string
	host   netsim.NodeID
	client string

	K      *sim.Kernel
	Report *bus.Shard
	Rm     *remos.Service
	Period float64

	// ServerHost yields the measurement endpoint for the client's current
	// group (the first active server's machine).
	ServerHost func() (netsim.NodeID, bool)
	ClientHost netsim.NodeID

	stopTick func()
	stopped  bool
	inFlight bool
	sentAt   sim.Time
	last     float64
	seen     bool
}

// NewBandwidthGauge creates a bandwidth gauge for client, running on host.
func NewBandwidthGauge(k *sim.Kernel, reportBus *bus.Shard, rm *remos.Service, host netsim.NodeID, client string, clientHost netsim.NodeID, serverHost func() (netsim.NodeID, bool), period float64) *BandwidthGauge {
	return &BandwidthGauge{
		name: "bandwidth:" + client, host: host, client: client,
		K: k, Report: reportBus, Rm: rm, Period: period,
		ServerHost: serverHost, ClientHost: clientHost,
	}
}

// Name implements Gauge.
func (g *BandwidthGauge) Name() string { return g.name }

// Host implements Gauge.
func (g *BandwidthGauge) Host() netsim.NodeID { return g.host }

// Last returns the last reported value.
func (g *BandwidthGauge) Last() (float64, bool) { return g.last, g.seen }

func (g *BandwidthGauge) start() {
	g.stopped = false
	g.stopTick = g.K.Ticker(g.K.Now()+g.Period, g.Period, func(now sim.Time) {
		if g.inFlight {
			// A lost query or reply must not wedge the gauge: give a cold
			// collection ample time, then retry.
			if now-g.sentAt < g.Rm.ColdDelay+4*g.Period {
				return
			}
			g.inFlight = false
		}
		sh, ok := g.ServerHost()
		if !ok {
			return
		}
		g.inFlight = true
		g.sentAt = now
		sent := now
		g.Rm.GetFlow(g.host, sh, g.ClientHost, func(bw float64) {
			if g.stopped {
				// The gauge was torn down while the query was in flight
				// (e.g. its app retired): the report shard may already be
				// leased to another tenant, so the late reply must not
				// publish.
				return
			}
			if g.sentAt != sent {
				return // a retry superseded this query
			}
			g.inFlight = false
			g.last, g.seen = bw, true
			// The bandwidth gauge's input is a Remos query, not a probe
			// message, so its update span is a root (no probe parent).
			var parent obs.SpanID
			if tr := g.Report.Tracer(); tr != nil {
				parent = tr.Instant(obs.KindGaugeUpdate, 0, g.Report.Label, g.name, bw, 0)
			}
			report(g.Report, g.host, g.name, g.client, "clientRole", "bandwidth", bw, parent)
		})
	})
}

func (g *BandwidthGauge) stop() {
	g.stopped = true
	if g.stopTick != nil {
		g.stopTick()
		g.stopTick = nil
	}
}

var _ Gauge = (*LatencyGauge)(nil)
var _ Gauge = (*LoadGauge)(nil)
var _ Gauge = (*BandwidthGauge)(nil)
