package gauges

import (
	"fmt"

	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

// Manager owns gauge lifecycles and implements the gauge protocol the paper
// defines "for gauge creation, communication, and deletion".
//
// Creating a gauge costs CreateMsgs sequential control-message round trips
// between the manager host and the gauge host, each padded by ProtocolDelay
// (deployment, class loading, subscription setup — the costs that made the
// paper's repairs average 30 seconds). Deletion costs DeleteMsgs round
// trips. With Caching enabled, a re-target after a repair is a single
// reconfiguration round trip instead of delete+create — the paper's §5.3
// proposal ("caching gauges or relocating them ... should see our repair
// speed improve dramatically").
type Manager struct {
	K    *sim.Kernel
	Net  *netsim.Network
	Host netsim.NodeID

	CreateMsgs    int
	DeleteMsgs    int
	MsgBits       float64
	ProtocolDelay float64
	// RetryTimeout bounds each handshake leg: a lost message is
	// retransmitted after this long, so gauge deployment survives lossy
	// monitoring networks.
	RetryTimeout float64
	Priority     netsim.Priority
	Caching      bool

	gauges map[string]Gauge

	creates, deletes, retargets uint64
	protocolBusy                float64 // cumulative protocol time
}

// NewManager creates a gauge manager anchored at host.
func NewManager(k *sim.Kernel, net *netsim.Network, host netsim.NodeID) *Manager {
	return &Manager{
		K: k, Net: net, Host: host,
		CreateMsgs: 4, DeleteMsgs: 2,
		MsgBits:       8192,
		ProtocolDelay: 2.5,
		RetryTimeout:  15,
		gauges:        map[string]Gauge{},
	}
}

// Counts returns lifecycle statistics (creates, deletes, retargets).
func (m *Manager) Counts() (creates, deletes, retargets uint64) {
	return m.creates, m.deletes, m.retargets
}

// ProtocolTime returns cumulative time spent in lifecycle protocol
// exchanges.
func (m *Manager) ProtocolTime() float64 { return m.protocolBusy }

// Gauge returns a deployed gauge by name.
func (m *Manager) Gauge(name string) Gauge { return m.gauges[name] }

// Deployed returns the number of live gauges.
func (m *Manager) Deployed() int { return len(m.gauges) }

// sendReliable delivers one protocol message with retransmission: if the
// network drops it (lossy monitoring plane), it is resent after
// RetryTimeout until it lands.
func (m *Manager) sendReliable(from, to netsim.NodeID, cb func()) {
	delivered := false
	var attempt func()
	attempt = func() {
		if delivered {
			return
		}
		m.Net.SendMessage(from, to, m.MsgBits, m.Priority, func() {
			if !delivered {
				delivered = true
				cb()
			}
		})
		if m.RetryTimeout > 0 {
			m.K.After(m.RetryTimeout, func() {
				if !delivered {
					attempt()
				}
			})
		}
	}
	attempt()
}

// handshake runs n sequential round trips to host and calls done.
func (m *Manager) handshake(host netsim.NodeID, n int, done func()) {
	if n <= 0 {
		m.K.After(0, done)
		return
	}
	start := m.K.Now()
	var step func(remaining int)
	step = func(remaining int) {
		if remaining == 0 {
			m.protocolBusy += m.K.Now() - start
			done()
			return
		}
		// Request leg, then protocol work, then ack leg.
		m.sendReliable(m.Host, host, func() {
			m.K.After(m.ProtocolDelay, func() {
				m.sendReliable(host, m.Host, func() {
					step(remaining - 1)
				})
			})
		})
	}
	step(n)
}

// Create deploys a gauge: after the creation handshake completes the gauge
// starts measuring and reporting. done (optional) fires when the gauge is
// live.
func (m *Manager) Create(g Gauge, done func()) error {
	if _, dup := m.gauges[g.Name()]; dup {
		return fmt.Errorf("gauges: %s already deployed", g.Name())
	}
	m.creates++
	m.gauges[g.Name()] = g
	m.handshake(g.Host(), m.CreateMsgs, func() {
		if m.gauges[g.Name()] == g { // not deleted meanwhile
			g.start()
		}
		if done != nil {
			done()
		}
	})
	return nil
}

// Delete tears a gauge down; done fires when the teardown handshake
// completes.
func (m *Manager) Delete(name string, done func()) error {
	g, ok := m.gauges[name]
	if !ok {
		return fmt.Errorf("gauges: no gauge %s", name)
	}
	m.deletes++
	delete(m.gauges, name)
	g.stop()
	m.handshake(g.Host(), m.DeleteMsgs, func() {
		if done != nil {
			done()
		}
	})
	return nil
}

// Recreate implements the repair-time gauge churn for one gauge: without
// caching it is Delete followed by Create of the replacement; with caching
// it is a single reconfiguration round trip (the replacement gauge reuses
// the deployed instance's slot). done fires when the gauge is live again.
func (m *Manager) Recreate(old string, replacement Gauge, done func()) error {
	g, ok := m.gauges[old]
	if !ok {
		return fmt.Errorf("gauges: no gauge %s", old)
	}
	if m.Caching {
		m.retargets++
		g.stop()
		delete(m.gauges, old)
		m.gauges[replacement.Name()] = replacement
		m.handshake(replacement.Host(), 1, func() {
			if m.gauges[replacement.Name()] == replacement {
				replacement.start()
			}
			if done != nil {
				done()
			}
		})
		return nil
	}
	return m.Delete(old, func() {
		_ = m.Create(replacement, done)
	})
}
