package gauges

import (
	"fmt"
	"sort"

	"archadapt/internal/netsim"
	"archadapt/internal/sim"
)

// Manager owns gauge lifecycles and implements the gauge protocol the paper
// defines "for gauge creation, communication, and deletion".
//
// Creating a gauge costs CreateMsgs sequential control-message round trips
// between the owning application's manager host and the gauge host, each
// padded by ProtocolDelay (deployment, class loading, subscription setup —
// the costs that made the paper's repairs average 30 seconds). Deletion
// costs DeleteMsgs round trips. With Caching enabled, a re-target after a
// repair is a single reconfiguration round trip instead of delete+create —
// the paper's §5.3 proposal ("caching gauges or relocating them ... should
// see our repair speed improve dramatically").
//
// One Manager serves a whole fleet: applications attach through Leases,
// which scope gauge names and anchor the protocol exchanges at the leasing
// application's manager host. The Manager's protocol parameters and
// lifecycle counters are fleet-wide; per-application counters live on the
// Lease. A Manager used directly (Create/Delete/Recreate on the Manager)
// operates through a default lease anchored at Host — the single-tenant
// configuration of the per-application reference oracle.
type Manager struct {
	K    *sim.Kernel
	Net  *netsim.Network
	Host netsim.NodeID

	CreateMsgs    int
	DeleteMsgs    int
	MsgBits       float64
	ProtocolDelay float64
	// RetryTimeout bounds each handshake leg: a lost message is
	// retransmitted after this long, so gauge deployment survives lossy
	// monitoring networks.
	RetryTimeout float64
	Priority     netsim.Priority
	Caching      bool

	gauges map[gaugeKey]Gauge
	leases map[string]*Lease
	def    *Lease

	creates, deletes, retargets uint64
	protocolBusy                float64 // cumulative protocol time
}

// gaugeKey scopes a gauge name to its leasing application.
type gaugeKey struct{ app, name string }

// Lease is one application's handle on the shared gauge manager: it scopes
// gauge names to the application and anchors lifecycle handshakes at the
// application's manager host.
type Lease struct {
	m    *Manager
	app  string
	host netsim.NodeID

	// Affinity is the simulation worker group the leasing tenant belongs to
	// (0 when the fleet runs serial). Assigned by the fleet at admission,
	// alongside the tenant's bus shards; advisory only — gauge behaviour
	// never depends on it.
	Affinity int

	deployed                    int
	creates, deletes, retargets uint64
	closed                      bool
}

// NewManager creates a gauge manager. host anchors the default lease (the
// single-tenant configuration); fleet tenants anchor their own leases.
func NewManager(k *sim.Kernel, net *netsim.Network, host netsim.NodeID) *Manager {
	return &Manager{
		K: k, Net: net, Host: host,
		CreateMsgs: 4, DeleteMsgs: 2,
		MsgBits:       8192,
		ProtocolDelay: 2.5,
		RetryTimeout:  15,
		gauges:        map[gaugeKey]Gauge{},
		leases:        map[string]*Lease{},
	}
}

// Lease attaches an application to the manager. Gauge names are scoped to
// app; protocol exchanges for this lease run between host (the application's
// manager machine) and each gauge's host.
func (m *Manager) Lease(app string, host netsim.NodeID) (*Lease, error) {
	if _, dup := m.leases[app]; dup {
		return nil, fmt.Errorf("gauges: application %q already holds a lease", app)
	}
	l := &Lease{m: m, app: app, host: host}
	m.leases[app] = l
	return l, nil
}

// Leases returns the number of live (non-default) leases.
func (m *Manager) Leases() int { return len(m.leases) }

// Counts returns fleet-wide lifecycle statistics (creates, deletes,
// retargets) across every lease.
func (m *Manager) Counts() (creates, deletes, retargets uint64) {
	return m.creates, m.deletes, m.retargets
}

// ProtocolTime returns cumulative time spent in lifecycle protocol
// exchanges, fleet-wide.
func (m *Manager) ProtocolTime() float64 { return m.protocolBusy }

// Deployed returns the number of live gauges across every lease.
func (m *Manager) Deployed() int { return len(m.gauges) }

// defLease lazily creates the default single-tenant lease.
func (m *Manager) defLease() *Lease {
	if m.def == nil {
		m.def = &Lease{m: m, app: "", host: m.Host}
	}
	return m.def
}

// DefaultLease returns the manager's default lease, anchored at Host — the
// handle single-tenant owners (the per-application reference configuration)
// operate through.
func (m *Manager) DefaultLease() *Lease { return m.defLease() }

// Create deploys a gauge under the default lease.
func (m *Manager) Create(g Gauge, done func()) error { return m.defLease().Create(g, done) }

// Delete tears down a default-lease gauge.
func (m *Manager) Delete(name string, done func()) error { return m.defLease().Delete(name, done) }

// Recreate churns a default-lease gauge.
func (m *Manager) Recreate(old string, replacement Gauge, done func()) error {
	return m.defLease().Recreate(old, replacement, done)
}

// Gauge returns a default-lease gauge by name.
func (m *Manager) Gauge(name string) Gauge { return m.defLease().Gauge(name) }

// sendReliable delivers one protocol message with retransmission: if the
// network drops it (lossy monitoring plane), it is resent after
// RetryTimeout until it lands.
func (m *Manager) sendReliable(from, to netsim.NodeID, cb func()) {
	delivered := false
	var attempt func()
	attempt = func() {
		if delivered {
			return
		}
		m.Net.SendMessage(from, to, m.MsgBits, m.Priority, func() {
			if !delivered {
				delivered = true
				cb()
			}
		})
		if m.RetryTimeout > 0 {
			m.K.AfterAnon(m.RetryTimeout, func() {
				if !delivered {
					attempt()
				}
			})
		}
	}
	attempt()
}

// handshake runs n sequential round trips between anchor and host and calls
// done.
func (m *Manager) handshake(anchor, host netsim.NodeID, n int, done func()) {
	if n <= 0 {
		m.K.AfterAnon(0, done)
		return
	}
	start := m.K.Now()
	var step func(remaining int)
	step = func(remaining int) {
		if remaining == 0 {
			m.protocolBusy += m.K.Now() - start
			done()
			return
		}
		// Request leg, then protocol work, then ack leg.
		m.sendReliable(anchor, host, func() {
			m.K.AfterAnon(m.ProtocolDelay, func() {
				m.sendReliable(host, anchor, func() {
					step(remaining - 1)
				})
			})
		})
	}
	step(n)
}

// App returns the lease's application name.
func (l *Lease) App() string { return l.app }

// Deployed returns the number of live gauges under this lease.
func (l *Lease) Deployed() int { return l.deployed }

// Counts returns this lease's lifecycle statistics.
func (l *Lease) Counts() (creates, deletes, retargets uint64) {
	return l.creates, l.deletes, l.retargets
}

// Gauge returns a deployed gauge by (lease-scoped) name.
func (l *Lease) Gauge(name string) Gauge { return l.m.gauges[gaugeKey{l.app, name}] }

// Create deploys a gauge: after the creation handshake completes the gauge
// starts measuring and reporting. done (optional) fires when the gauge is
// live.
func (l *Lease) Create(g Gauge, done func()) error {
	if l.closed {
		return fmt.Errorf("gauges: lease %q is closed", l.app)
	}
	key := gaugeKey{l.app, g.Name()}
	if _, dup := l.m.gauges[key]; dup {
		return fmt.Errorf("gauges: %s already deployed", g.Name())
	}
	l.creates++
	l.m.creates++
	l.m.gauges[key] = g
	l.deployed++
	l.m.handshake(l.host, g.Host(), l.m.CreateMsgs, func() {
		if l.m.gauges[key] == g { // not deleted meanwhile
			g.start()
		}
		if done != nil {
			done()
		}
	})
	return nil
}

// Delete tears a gauge down; done fires when the teardown handshake
// completes.
func (l *Lease) Delete(name string, done func()) error {
	key := gaugeKey{l.app, name}
	g, ok := l.m.gauges[key]
	if !ok {
		return fmt.Errorf("gauges: no gauge %s", name)
	}
	l.deletes++
	l.m.deletes++
	delete(l.m.gauges, key)
	l.deployed--
	g.stop()
	l.m.handshake(l.host, g.Host(), l.m.DeleteMsgs, func() {
		if done != nil {
			done()
		}
	})
	return nil
}

// Recreate implements the repair-time gauge churn for one gauge: without
// caching it is Delete followed by Create of the replacement; with caching
// it is a single reconfiguration round trip (the replacement gauge reuses
// the deployed instance's slot). done fires when the gauge is live again.
func (l *Lease) Recreate(old string, replacement Gauge, done func()) error {
	oldKey := gaugeKey{l.app, old}
	g, ok := l.m.gauges[oldKey]
	if !ok {
		return fmt.Errorf("gauges: no gauge %s", old)
	}
	if l.m.Caching {
		l.retargets++
		l.m.retargets++
		g.stop()
		delete(l.m.gauges, oldKey)
		newKey := gaugeKey{l.app, replacement.Name()}
		l.m.gauges[newKey] = replacement
		l.m.handshake(l.host, replacement.Host(), 1, func() {
			if l.m.gauges[newKey] == replacement {
				replacement.start()
			}
			if done != nil {
				done()
			}
		})
		return nil
	}
	return l.Delete(old, func() {
		_ = l.Create(replacement, done)
	})
}

// Close retires the lease: every remaining gauge stops measuring
// immediately, then the teardown handshakes for all of them run as one
// batched lifecycle pass (sequentially, in gauge-name order, like repair
// churn). done (optional) fires when the last teardown completes. After
// Close the lease's name is free for a future admission.
func (l *Lease) Close(done func()) {
	if l.closed {
		return
	}
	l.closed = true
	delete(l.m.leases, l.app)

	// Collect and stop this lease's gauges in deterministic order.
	var names []string
	for key := range l.m.gauges {
		if key.app == l.app {
			names = append(names, key.name)
		}
	}
	sort.Strings(names)
	hosts := make([]netsim.NodeID, len(names))
	for i, name := range names {
		key := gaugeKey{l.app, name}
		g := l.m.gauges[key]
		hosts[i] = g.Host()
		l.deletes++
		l.m.deletes++
		delete(l.m.gauges, key)
		l.deployed--
		g.stop()
	}

	// One dispatch pass over the teardown handshakes.
	var step func(i int)
	step = func(i int) {
		if i >= len(hosts) {
			if done != nil {
				done()
			}
			return
		}
		l.m.handshake(l.host, hosts[i], l.m.DeleteMsgs, func() { step(i + 1) })
	}
	step(0)
}
