package gauges

import (
	"math"
	"testing"

	"archadapt/internal/bus"
	"archadapt/internal/netsim"
	"archadapt/internal/probes"
	"archadapt/internal/remos"
	"archadapt/internal/sim"
)

type rig struct {
	k       *sim.Kernel
	net     *netsim.Network
	probe   *bus.Shard
	report  *bus.Shard
	mgr     *Manager
	gHost   netsim.NodeID
	mHost   netsim.NodeID
	rm      *remos.Service
	reports []bus.Message
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel()
	net := netsim.New(k)
	gHost := net.AddHost("gauge")
	r := net.AddRouter("r")
	mHost := net.AddHost("mgr")
	net.Connect(gHost, r, 10e6, 1e-3)
	net.Connect(mHost, r, 10e6, 1e-3)
	rg := &rig{
		k: k, net: net,
		probe:  bus.New(k, net).Default(),
		report: bus.New(k, net).Default(),
		mgr:    NewManager(k, net, mHost),
		gHost:  gHost, mHost: mHost,
		rm: remos.New(k, net, mHost),
	}
	rg.report.Subscribe(mHost, bus.TopicIs(TopicReport), func(m bus.Message) {
		rg.reports = append(rg.reports, m)
	})
	return rg
}

func (r *rig) pubResponse(client string, latency float64) {
	r.probe.Publish(bus.Message{
		Topic: probes.TopicResponse,
		Src:   r.gHost,
		Name:  client,
		V1:    latency,
		Group: "G",
	})
}

func TestLatencyGaugeWindowedAverage(t *testing.T) {
	r := newRig(t)
	g := NewLatencyGauge(r.k, r.probe, r.report, r.gHost, "C1", 20, 5)
	if err := r.mgr.Create(g, nil); err != nil {
		t.Fatal(err)
	}
	// Deployment handshake first; then samples at t=30.
	r.k.At(30, func() { r.pubResponse("C1", 1.0) })
	r.k.At(31, func() { r.pubResponse("C1", 3.0) })
	r.k.At(31, func() { r.pubResponse("C2", 100.0) }) // other client: filtered out
	r.k.Run(40)
	if len(r.reports) == 0 {
		t.Fatal("no gauge reports")
	}
	last := r.reports[len(r.reports)-1]
	if last.Str("target") != "C1" || last.Str("prop") != "averageLatency" || last.Str("kind") != "client" {
		t.Fatalf("report fields %+v", last)
	}
	if v := last.Num("value"); math.Abs(v-2.0) > 1e-9 {
		t.Fatalf("avg=%v, want 2.0", v)
	}
	// Old samples age out of the window.
	r.k.Run(60)
	n := len(r.reports)
	r.k.Run(70)
	if len(r.reports) != n {
		t.Fatal("gauge should stop reporting once the window empties")
	}
}

func TestLoadGaugeSmoothing(t *testing.T) {
	r := newRig(t)
	g := NewLoadGauge(r.k, r.probe, r.report, r.gHost, "G", 5)
	g.Smooth = 0.5
	if err := r.mgr.Create(g, nil); err != nil {
		t.Fatal(err)
	}
	pub := func(at, v float64) {
		r.k.At(at, func() {
			r.probe.Publish(bus.Message{
				Topic: probes.TopicQueue, Src: r.gHost,
				Group: "G", V1: v,
			})
		})
	}
	pub(30, 10)
	pub(31, 0)
	r.k.Run(40)
	// EWMA: first sample initializes to 10, then 0.5*0 + 0.5*10 = 5.
	if v := g.Value(); math.Abs(v-5.0) > 1e-9 {
		t.Fatalf("smoothed=%v, want 5", v)
	}
}

func TestBandwidthGaugeQueriesRemos(t *testing.T) {
	r := newRig(t)
	r.rm.Prequery(r.mHost, r.gHost)
	r.k.RunAll(0) // advances the clock past the 90 s collection
	g := NewBandwidthGauge(r.k, r.report, r.rm, r.gHost, "C1", r.gHost,
		func() (netsim.NodeID, bool) { return r.mHost, true }, 5)
	if err := r.mgr.Create(g, nil); err != nil {
		t.Fatal(err)
	}
	r.k.Run(r.k.Now() + 60)
	if len(r.reports) == 0 {
		t.Fatal("no bandwidth reports")
	}
	last := r.reports[len(r.reports)-1]
	if last.Str("kind") != "clientRole" || last.Str("prop") != "bandwidth" {
		t.Fatalf("fields %+v", last)
	}
	if v := last.Num("value"); math.Abs(v-10e6) > 1 {
		t.Fatalf("bw=%v", v)
	}
	if v, ok := g.Last(); !ok || v != last.Num("value") {
		t.Fatal("Last() mismatch")
	}
}

func TestBandwidthGaugeSkipsWhenNoServer(t *testing.T) {
	r := newRig(t)
	g := NewBandwidthGauge(r.k, r.report, r.rm, r.gHost, "C1", r.gHost,
		func() (netsim.NodeID, bool) { return 0, false }, 5)
	_ = r.mgr.Create(g, nil)
	r.k.Run(60)
	if len(r.reports) != 0 {
		t.Fatal("gauge reported with no measurement endpoint")
	}
}

func TestCreationHandshakeCost(t *testing.T) {
	r := newRig(t)
	g := NewLatencyGauge(r.k, r.probe, r.report, r.gHost, "C1", 20, 5)
	live := -1.0
	if err := r.mgr.Create(g, func() { live = r.k.Now() }); err != nil {
		t.Fatal(err)
	}
	r.k.Run(120)
	// 4 round trips with 2.5 s protocol delay each: at least 10 s.
	if live < 10 {
		t.Fatalf("gauge live at %v, want >= 10 s of protocol cost", live)
	}
	if live > 30 {
		t.Fatalf("gauge deployment too slow on idle network: %v", live)
	}
	if c, _, _ := r.mgr.Counts(); c != 1 {
		t.Fatal("create count")
	}
	if r.mgr.ProtocolTime() <= 0 {
		t.Fatal("protocol time not accounted")
	}
}

func TestDuplicateCreateRejected(t *testing.T) {
	r := newRig(t)
	g := NewLatencyGauge(r.k, r.probe, r.report, r.gHost, "C1", 20, 5)
	_ = r.mgr.Create(g, nil)
	g2 := NewLatencyGauge(r.k, r.probe, r.report, r.gHost, "C1", 20, 5)
	if err := r.mgr.Create(g2, nil); err == nil {
		t.Fatal("duplicate create should fail")
	}
}

func TestDeleteStopsReporting(t *testing.T) {
	r := newRig(t)
	g := NewLatencyGauge(r.k, r.probe, r.report, r.gHost, "C1", 60, 5)
	_ = r.mgr.Create(g, nil)
	r.k.At(30, func() { r.pubResponse("C1", 1.0) })
	r.k.Run(45)
	n := len(r.reports)
	if n == 0 {
		t.Fatal("no reports before delete")
	}
	done := false
	if err := r.mgr.Delete(g.Name(), func() { done = true }); err != nil {
		t.Fatal(err)
	}
	r.k.Run(200)
	if !done {
		t.Fatal("delete handshake never completed")
	}
	if len(r.reports) != n {
		t.Fatalf("gauge reported after delete: %d -> %d", n, len(r.reports))
	}
	if r.mgr.Deployed() != 0 {
		t.Fatal("gauge still deployed")
	}
	if err := r.mgr.Delete(g.Name(), nil); err == nil {
		t.Fatal("double delete should fail")
	}
}

func TestRecreateVsCachedCost(t *testing.T) {
	measure := func(caching bool) float64 {
		r := newRig(t)
		r.mgr.Caching = caching
		g := NewLatencyGauge(r.k, r.probe, r.report, r.gHost, "C1", 20, 5)
		_ = r.mgr.Create(g, nil)
		r.k.Run(60)
		start := r.k.Now()
		doneAt := -1.0
		repl := NewLatencyGauge(r.k, r.probe, r.report, r.gHost, "C1x", 20, 5)
		if err := r.mgr.Recreate(g.Name(), repl, func() { doneAt = r.k.Now() }); err != nil {
			t.Fatal(err)
		}
		r.k.Run(600)
		if doneAt < 0 {
			t.Fatal("recreate never completed")
		}
		if r.mgr.Gauge("C1x") == nil && r.mgr.Gauge(repl.Name()) == nil {
			t.Fatal("replacement not deployed")
		}
		return doneAt - start
	}
	slow := measure(false)
	fast := measure(true)
	// Paper §5.3: caching should improve repair speed "dramatically".
	if fast >= slow/3 {
		t.Fatalf("cached churn %v not dramatically faster than recreate %v", fast, slow)
	}
}

func TestRecreateUnknownGauge(t *testing.T) {
	r := newRig(t)
	g := NewLatencyGauge(r.k, r.probe, r.report, r.gHost, "C1", 20, 5)
	if err := r.mgr.Recreate("nope", g, nil); err == nil {
		t.Fatal("recreate of unknown gauge should fail")
	}
}

func TestChurnUnderCongestionIsSlower(t *testing.T) {
	// The gauge protocol rides the shared network: churn during congestion
	// takes longer — the §5.3 monitoring-lag pathology at repair time.
	measure := func(congest bool) float64 {
		r := newRig(t)
		if congest {
			id, ok := r.net.LinkBetween(r.gHost, r.net.MustLookup("r"))
			if !ok {
				t.Fatal("no link")
			}
			r.net.SetBackgroundBoth(id, 10e6)
		}
		g := NewLatencyGauge(r.k, r.probe, r.report, r.gHost, "C1", 20, 5)
		done := -1.0
		_ = r.mgr.Create(g, func() { done = r.k.Now() })
		r.k.Run(3000)
		if done < 0 {
			t.Fatal("create never completed")
		}
		return done
	}
	idle := measure(false)
	congested := measure(true)
	if congested < idle*1.2 {
		t.Fatalf("congested churn %v should exceed idle %v", congested, idle)
	}
}
